package allow

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parseString(t *testing.T, content string) (*List, error) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "lint.allow")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return Parse(path)
}

func TestParseValid(t *testing.T) {
	l, err := parseString(t, `
# header comment

adhocgo internal/sta/levelized.go (*Analyzer).forwardParallel # disjoint chunks, WaitGroup-joined
nondeterm internal/engine/diskcache.go cleanStaleTemps # janitorial sweep, results independent
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(l.Entries))
	}
	if !l.Match("adhocgo", "internal/sta/levelized.go", "(*Analyzer).forwardParallel") {
		t.Error("expected method entry to match")
	}
	if l.Match("adhocgo", "internal/sta/levelized.go", "otherFunc") {
		t.Error("unexpected match for unlisted function")
	}
	if l.Match("maporder", "internal/sta/levelized.go", "(*Analyzer).forwardParallel") {
		t.Error("unexpected cross-analyzer match")
	}
	if got := l.Unused(); len(got) != 1 || got[0].Func != "cleanStaleTemps" {
		t.Errorf("Unused() = %v, want only the cleanStaleTemps entry", got)
	}
}

func TestParseRejectsMissingJustification(t *testing.T) {
	_, err := parseString(t, "adhocgo file.go someFunc\n")
	if err == nil || !strings.Contains(err.Error(), "justification") {
		t.Errorf("want justification error, got %v", err)
	}
}

func TestParseRejectsEmptyJustification(t *testing.T) {
	_, err := parseString(t, "adhocgo file.go someFunc #   \n")
	if err == nil || !strings.Contains(err.Error(), "justification") {
		t.Errorf("want justification error, got %v", err)
	}
}

func TestParseRejectsWrongFieldCount(t *testing.T) {
	_, err := parseString(t, "adhocgo file.go # missing function field\n")
	if err == nil {
		t.Error("want field-count error, got nil")
	}
}
