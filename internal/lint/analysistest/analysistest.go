// Package analysistest runs one rtllint analyzer over fixture packages
// under testdata/src and checks its diagnostics against `// want`
// expectations, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract:
//
//	m[k] = append(m[k], v) // no diagnostic expected
//	out = append(out, v)   // want `append to "out"`
//
// A want comment holds one or more double-quoted regular expressions that
// must each match a diagnostic reported on that line; diagnostics with no
// matching expectation, and expectations with no matching diagnostic, fail
// the test. lint.allow files inside fixture directories are honored
// exactly as in a real run (the driver applies them), so allowlist-hit and
// allowlist-miss behavior is testable with fixtures.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rtltimer/internal/lint/analysis"
	"rtltimer/internal/lint/driver"
	"rtltimer/internal/lint/load"
)

// Run loads each fixture package (an import path under testdata/src),
// applies the analyzer through the standard driver (including lint.allow
// filtering), and matches findings against // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	ld := load.NewFixture(filepath.Join(testdata, "src"))
	ld.IncludeTests = true
	runner := driver.New()
	for _, path := range paths {
		pkg, err := ld.Load(path)
		if err != nil {
			t.Fatalf("load fixture %q: %v", path, err)
		}
		findings, err := runner.Run([]*driver.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("run %s on %q: %v", a.Name, path, err)
		}
		checkWants(t, pkg, findings)
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

func checkWants(t *testing.T, pkg *driver.Package, findings []driver.Finding) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// collectWants parses every `// want "re" ...` comment in the package.
func collectWants(t *testing.T, pkg *driver.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parseWant(text)
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, raw := range res {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

// parseWant splits a want payload into its quoted regexp literals,
// accepting both double quotes and backquotes.
func parseWant(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for len(s) > 0 {
		var (
			lit string
			err error
		)
		switch s[0] {
		case '"':
			end := matchingQuote(s)
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			lit, err = strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			lit = s[1 : end+1]
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		out = append(out, lit)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want")
	}
	return out, nil
}

// matchingQuote returns the index of the closing double quote of the
// string literal starting at s[0] == '"', honoring backslash escapes.
func matchingQuote(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}
