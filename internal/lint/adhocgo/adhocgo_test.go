package adhocgo_test

import (
	"testing"

	"rtltimer/internal/lint/adhocgo"
	"rtltimer/internal/lint/analysistest"
)

func TestAdhocgo(t *testing.T) {
	analysistest.Run(t, "testdata", adhocgo.Analyzer,
		"plain",                    // flagged: no allowlist in scope
		"allowed",                  // allowlist hit (func and method forms) + miss
		"rtltimer/internal/engine", // exempt package
	)
}
