// Package plain has no lint.allow anywhere above it inside testdata: any
// goroutine is flagged, including inside methods and nested literals.
package plain

import "sync"

func fanOut(work []int) {
	var wg sync.WaitGroup
	for range work {
		wg.Add(1)
		go func() { // want `ad-hoc goroutine outside rtltimer/internal/engine`
			defer wg.Done()
		}()
	}
	wg.Wait()
}

type runner struct{}

func (runner) run() {
	f := func() {
		go noop() // want `ad-hoc goroutine outside rtltimer/internal/engine`
	}
	f()
}

func noop() {}
