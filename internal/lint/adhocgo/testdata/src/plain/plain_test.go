package plain

// Test files are exempt from the adhocgo contract: tests may fan out
// freely (determinism property tests do exactly that).
func spawnInTest(done chan struct{}) {
	go func() { // no diagnostic: _test.go is exempt
		done <- struct{}{}
	}()
}
