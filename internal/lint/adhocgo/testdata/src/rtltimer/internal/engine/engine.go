// Package engine stands in for the real worker pool: goroutines here are
// the sanctioned implementation of fan-out, so adhocgo stays silent.
package engine

func pool(jobs int, run func()) {
	done := make(chan struct{}, jobs)
	for i := 0; i < jobs; i++ {
		go func() { // no diagnostic: inside rtltimer/internal/engine
			run()
			done <- struct{}{}
		}()
	}
	for i := 0; i < jobs; i++ {
		<-done
	}
}
