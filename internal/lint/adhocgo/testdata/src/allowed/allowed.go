// Package allowed exercises lint.allow hit and miss cases for adhocgo.
package allowed

// sanctionedFanout is listed in this directory's lint.allow: no
// diagnostic.
func sanctionedFanout(done chan struct{}) {
	go func() { // allowlist hit: suppressed
		done <- struct{}{}
	}()
}

// Pool exercises the (*Recv).Name allowlist spelling.
type Pool struct{}

func (p *Pool) spawn(done chan struct{}) {
	go func() { // allowlist hit via (*Pool).spawn: suppressed
		done <- struct{}{}
	}()
}

// rogue is NOT listed: the goroutine is flagged even though the file has
// other sanctioned sites.
func rogue(done chan struct{}) {
	go func() { // want `ad-hoc goroutine outside rtltimer/internal/engine`
		done <- struct{}{}
	}()
}
