// Package adhocgo defines the rtllint analyzer that forbids ad-hoc
// goroutines outside internal/engine.
//
// The engine's standing constraint is that all fan-out goes through the
// bounded worker pool in internal/engine, where concurrency is capped,
// deduplicated (single-flight) and joined deterministically. A bare `go`
// statement anywhere else is either a determinism hazard or an invisible
// exception; this analyzer turns the latter into a checked-in, justified
// lint.allow entry (`adhocgo <file> <func> # why`) and the former into a
// vet failure. Test files are exempt.
package adhocgo

import (
	"go/ast"
	"strings"

	"rtltimer/internal/lint/analysis"
)

// EnginePath is the one package whose goroutines are sanctioned by
// construction: the bounded worker pool itself.
const EnginePath = "rtltimer/internal/engine"

var Analyzer = &analysis.Analyzer{
	Name: "adhocgo",
	Doc: "flag `go` statements outside internal/engine\n\n" +
		"All fan-out must go through the engine worker pool; sanctioned " +
		"exceptions are recorded in lint.allow as 'adhocgo <file> <func> # why'.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	path := pass.Pkg.Path()
	if path == EnginePath || strings.HasPrefix(path, EnginePath+"/") {
		return nil, nil
	}
	pass.Preorder(func(n ast.Node) {
		if g, ok := n.(*ast.GoStmt); ok {
			pass.Reportf(g.Pos(),
				"ad-hoc goroutine outside %s: route fan-out through the engine worker pool, or sanction this site in lint.allow",
				EnginePath)
		}
	})
	return nil, nil
}
