package nondeterm_test

import (
	"testing"

	"rtltimer/internal/lint/analysistest"
	"rtltimer/internal/lint/nondeterm"
)

func TestNondeterm(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterm.Analyzer,
		"rtltimer/internal/sta", // restricted path: entropy flagged, seeded patterns pass
		"freepkg",               // unrestricted path: nothing flagged
	)
}
