// Package nondeterm defines the rtllint analyzer that bans entropy
// sources from result-producing packages.
//
// Everything the engine computes must be a pure function of
// (design, variant, config): results are content-addressed, cached on
// disk, compared bit-for-bit against the retained oracle, and — once
// evaluation is distributed — exchanged between processes that must
// agree. Wall-clock reads, the process-global math/rand source, process
// identity, and crypto/rand all break that. Constant-seeded PRNGs are
// fine and recognized. Test files are exempt.
package nondeterm

import (
	"go/ast"
	"go/types"
	"strings"

	"rtltimer/internal/lint/analysis"
)

// ResultPackages are the package paths (and their subpackages) whose
// outputs feed the determinism contract.
var ResultPackages = []string{
	"rtltimer/internal/sta",
	"rtltimer/internal/bog",
	"rtltimer/internal/part",
	"rtltimer/internal/engine",
	"rtltimer/internal/opt",
	"rtltimer/internal/features",
}

var Analyzer = &analysis.Analyzer{
	Name: "nondeterm",
	Doc: "flag entropy sources in result-producing packages\n\n" +
		"time.Now/Since/Until, the global math/rand source, rand sources " +
		"seeded with non-constants, os.Getpid-style process identity, and " +
		"crypto/rand are forbidden in " + strings.Join(ResultPackages, ", ") + ".",
	Run: run,
}

// randCtors are the constructor functions of math/rand and math/rand/v2
// that are deterministic when (and only when) their arguments are
// compile-time constants.
var randCtors = map[string]bool{
	"NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

var timeBanned = map[string]bool{"Now": true, "Since": true, "Until": true}
var osBanned = map[string]bool{"Getpid": true, "Getppid": true, "Hostname": true}

func run(pass *analysis.Pass) (interface{}, error) {
	if !restricted(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.Preorder(func(n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok {
			return
		}
		pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName)
		if !ok {
			return
		}
		pkg := pn.Imported().Path()
		name := sel.Sel.Name
		switch {
		case pkg == "time" && timeBanned[name]:
			pass.Reportf(sel.Pos(), "time.%s in result-producing package %s: results must not depend on the wall clock", name, pass.Pkg.Path())
		case pkg == "os" && osBanned[name]:
			pass.Reportf(sel.Pos(), "os.%s in result-producing package %s: results must not depend on process identity", name, pass.Pkg.Path())
		case pkg == "crypto/rand":
			pass.Reportf(sel.Pos(), "crypto/rand.%s in result-producing package %s: cryptographic entropy is never reproducible", name, pass.Pkg.Path())
		case pkg == "math/rand" || pkg == "math/rand/v2":
			checkRand(pass, sel, pkg, name)
		}
	})
	return nil, nil
}

func restricted(path string) bool {
	for _, p := range ResultPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// checkRand classifies a package-level math/rand selector: constructors
// with constant seeds are deterministic; everything else — the implicitly
// seeded global source, or a source seeded from a runtime value — is
// flagged.
func checkRand(pass *analysis.Pass, sel *ast.SelectorExpr, pkg, name string) {
	call := enclosingCall(pass, sel)
	switch {
	case randCtors[name]:
		if call == nil {
			pass.Reportf(sel.Pos(), "%s.%s referenced without a direct constant-seeded call in %s", pkg, name, pass.Pkg.Path())
			return
		}
		for _, arg := range call.Args {
			if tv, ok := pass.TypesInfo.Types[arg]; !ok || tv.Value == nil {
				pass.Reportf(sel.Pos(), "%s.%s with non-constant seed in result-producing package %s: seed with a compile-time constant so runs are reproducible", pkg, name, pass.Pkg.Path())
				return
			}
		}
	case name == "New":
		// rand.New is deterministic iff its source is; require the
		// source construction to be visible (a direct ctor call, itself
		// checked above).
		if call == nil || len(call.Args) != 1 || !isRandCtorCall(pass, call.Args[0]) {
			pass.Reportf(sel.Pos(), "%s.New without a directly constructed constant-seeded source in %s: write rand.New(rand.NewSource(<const>))", pkg, pass.Pkg.Path())
		}
	default:
		// Package-level functions (Intn, Float64, Perm, Shuffle, Seed,
		// Int63, ...) draw from the process-global source.
		if _, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			pass.Reportf(sel.Pos(), "%s.%s uses the process-global random source in %s: use a local constant-seeded rand.Rand", pkg, name, pass.Pkg.Path())
		}
	}
}

// enclosingCall returns the CallExpr whose Fun is exactly sel, found by
// scanning the file containing sel.
func enclosingCall(pass *analysis.Pass, sel *ast.SelectorExpr) *ast.CallExpr {
	for _, f := range pass.Files {
		if sel.Pos() < f.Pos() || sel.Pos() > f.End() {
			continue
		}
		var found *ast.CallExpr
		ast.Inspect(f, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			if c, ok := n.(*ast.CallExpr); ok && c.Fun == sel {
				found = c
				return false
			}
			return true
		})
		return found
	}
	return nil
}

func isRandCtorCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return randCtors[sel.Sel.Name]
}
