// Package freepkg is not on the nondeterm restricted list: entropy here
// is allowed (CLI frontends, logging, progress reporting).
package freepkg

import (
	"math/rand"
	"time"
)

func timestampedJitter() time.Duration {
	return time.Since(time.Now().Add(-time.Duration(rand.Intn(100)))) // no diagnostic: unrestricted package
}
