// Package sta stands in for the real result-producing timing package:
// its import path is on the nondeterm restricted list, so every entropy
// source below is checked. Import aliases must not fool the analyzer —
// detection resolves the package object, not the identifier text.
package sta

import (
	crand "crypto/rand"
	mrand "math/rand"
	rand2 "math/rand/v2"
	"os"
	"time"
)

// stamp pulls the wall clock into a result path.
func stamp() int64 {
	return time.Now().Unix() // want `time.Now in result-producing package rtltimer/internal/sta`
}

// elapsed uses time.Since, which reads the clock implicitly.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in result-producing package rtltimer/internal/sta`
}

// globalDraw draws from the process-global, time-seeded source.
func globalDraw(n int) int {
	return mrand.Intn(n) // want `math/rand.Intn uses the process-global random source`
}

// runtimeSeed seeds from a value only known at run time.
func runtimeSeed(seed int64) *mrand.Rand {
	return mrand.New(mrand.NewSource(seed)) // want `math/rand.NewSource with non-constant seed`
}

// hiddenSource hides the source construction behind a variable, so the
// analyzer cannot prove the seed is constant.
func hiddenSource(src mrand.Source) *mrand.Rand {
	return mrand.New(src) // want `math/rand.New without a directly constructed constant-seeded source`
}

// pid mixes process identity into a result path.
func pid() int {
	return os.Getpid() // want `os.Getpid in result-producing package rtltimer/internal/sta`
}

// cryptoBytes reads cryptographic entropy, which is never reproducible.
func cryptoBytes(b []byte) {
	crand.Read(b) // want `crypto/rand.Read in result-producing package rtltimer/internal/sta`
}

// seeded is the sanctioned pattern: a local source with a compile-time
// constant seed is reproducible across runs.
func seeded() *mrand.Rand {
	return mrand.New(mrand.NewSource(42))
}

// seededV2 is the math/rand/v2 equivalent.
func seededV2() *rand2.Rand {
	return rand2.New(rand2.NewPCG(1, 2))
}

// wallClockValue is fine: time.Time values passed in are data, only
// reading the clock is banned.
func wallClockValue(t time.Time) int64 {
	return t.Unix()
}
