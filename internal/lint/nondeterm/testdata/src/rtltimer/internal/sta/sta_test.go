package sta

import (
	"math/rand"
	"time"
)

// Test files are exempt: benchmarks and property tests may time things
// and draw unseeded randomness without affecting shipped results.
func testOnlyEntropy() (time.Time, int) {
	return time.Now(), rand.Intn(10) // no diagnostic: _test.go is exempt
}
