// Package maporder defines the rtllint analyzer that catches
// nondeterministic map iteration feeding ordered output.
//
// Go randomizes map iteration order, so a `range` over a map whose body
// appends to a slice, writes to a writer/encoder, or accumulates a float
// produces byte- (or bit-) nondeterministic results — the class of bug
// that made saved model artifacts nondeterministic in
// internal/core/serialize.go. The sorted-keys idiom is recognized: an
// append whose destination slice is later passed to a sort.*/slices.*
// call in the same function is order-safe (the multiset appended does not
// depend on iteration order once fully sorted) and is not flagged.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rtltimer/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration that writes ordered output\n\n" +
		"Ranging over a map while appending to a slice, writing to a " +
		"writer/encoder, or accumulating a float is nondeterministic; " +
		"collect the keys, sort them, and iterate the sorted slice.",
	Run: run,
}

// orderedCallPrefixes are method-name prefixes treated as ordered sinks:
// anything that emits bytes or encoded values in call order.
var orderedCallPrefixes = []string{"Write", "Encode", "Print", "Fprint", "Marshal"}

func run(pass *analysis.Pass) (interface{}, error) {
	pass.Preorder(func(n ast.Node) {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.TypesInfo.TypeOf(rs.X); t == nil || !isMap(t) {
				return true
			}
			checkMapRange(pass, fd, rs)
			return true
		})
	})
	return nil, nil
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange walks the body of one map-range statement looking for
// ordered sinks.
func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, fd, rs, n)
		case *ast.AssignStmt:
			checkFloatAccum(pass, rs, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		// append into a slice declared outside the loop.
		if obj, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); !ok || obj.Name() != "append" {
			return
		}
		if len(call.Args) == 0 {
			return
		}
		if mapEntryKeyedByIteration(pass, rs, call.Args[0]) {
			// m2[k] = append(m2[k], ...) regroups by the iteration
			// variables: each entry's content is independent of the
			// order keys are visited in.
			return
		}
		sink := rootVar(pass, call.Args[0])
		if sink == nil || declaredWithin(sink, rs) {
			return
		}
		if sortedAfter(pass, fd, rs, sink) {
			return
		}
		pass.Reportf(call.Pos(),
			"append to %q inside map iteration is order-nondeterministic: sort the map keys first, or sort %q after the loop",
			sink.Name(), sink.Name())
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		ordered := false
		for _, p := range orderedCallPrefixes {
			if strings.HasPrefix(name, p) {
				ordered = true
				break
			}
		}
		if !ordered {
			return
		}
		// A sink constructed inside the loop body (per-iteration buffer)
		// is order-safe.
		if recv := rootVar(pass, fun.X); recv != nil && declaredWithin(recv, rs) {
			return
		}
		pass.Reportf(call.Pos(),
			"%s call inside map iteration emits output in nondeterministic order: iterate sorted keys instead",
			name)
	}
}

// checkFloatAccum flags compound float accumulation under map order:
// sum += v over a map is bit-nondeterministic (float addition is not
// associative). Integer accumulation is exact and exempt.
func checkFloatAccum(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	if len(as.Lhs) != 1 || !isFloat(pass.TypesInfo.TypeOf(as.Lhs[0])) {
		return
	}
	sink := rootVar(pass, as.Lhs[0])
	if sink == nil || declaredWithin(sink, rs) {
		return
	}
	pass.Reportf(as.Pos(),
		"float accumulation into %q under map iteration order is bit-nondeterministic: iterate sorted keys",
		sink.Name())
}

func isFloat(t types.Type) bool {
	b, ok := t.(*types.Basic)
	if !ok {
		if u, uok := t.Underlying().(*types.Basic); uok {
			b = u
		} else {
			return false
		}
	}
	return b.Info()&types.IsFloat != 0
}

// rootVar resolves the base identifier of an lvalue-ish expression
// (x, x.f, x[i], (*x).f ...) to its variable object.
func rootVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			v, _ := pass.TypesInfo.Uses[x].(*types.Var)
			if v == nil {
				v, _ = pass.TypesInfo.Defs[x].(*types.Var)
			}
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mapEntryKeyedByIteration reports whether target is an index into a map
// whose index expression references one of the range statement's
// iteration variables — the order-safe regrouping idiom.
func mapEntryKeyedByIteration(pass *analysis.Pass, rs *ast.RangeStmt, target ast.Expr) bool {
	idx, ok := target.(*ast.IndexExpr)
	if !ok {
		return false
	}
	if t := pass.TypesInfo.TypeOf(idx.X); t == nil || !isMap(t) {
		return false
	}
	iterVars := map[*types.Var]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
				iterVars[v] = true
			}
		}
	}
	found := false
	ast.Inspect(idx.Index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && iterVars[v] {
				found = true
			}
		}
		return !found
	})
	return found
}

// declaredWithin reports whether v's declaration lies inside the range
// statement (loop variables and per-iteration locals).
func declaredWithin(v *types.Var, rs *ast.RangeStmt) bool {
	return v.Pos() >= rs.Pos() && v.Pos() <= rs.End()
}

// sortedAfter reports whether sink is passed to a sort.* or slices.* call
// after the range statement within the enclosing function — the
// sorted-keys idiom.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, sink *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if rootVar(pass, arg) == sink {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
