package maporder_test

import (
	"testing"

	"rtltimer/internal/lint/analysistest"
	"rtltimer/internal/lint/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "mapfix")
}
