// Package mapfix exercises maporder: map ranges that feed ordered sinks
// are flagged unless they use the sorted-keys idiom or another exempt
// pattern.
package mapfix

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// appendFromRange feeds an outer slice straight from map iteration order.
func appendFromRange(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to "out" inside map iteration is order-nondeterministic`
	}
	return out
}

// writeFromRange streams map entries to a writer in iteration order.
func writeFromRange(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `Fprintf call inside map iteration emits output in nondeterministic order`
	}
}

// builderFromRange writes to an outer strings.Builder in iteration order.
func builderFromRange(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString call inside map iteration emits output in nondeterministic order`
	}
	return b.String()
}

// floatAccumFromRange accumulates floats in iteration order: float
// addition is not associative, so the sum depends on the order.
func floatAccumFromRange(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into "sum" under map iteration order is bit-nondeterministic`
	}
	return sum
}

// sortedKeys is the canonical compliant idiom: collect keys, sort, then
// iterate the slice. The append is recognized because keys is passed to
// sort.Strings after the loop.
func sortedKeys(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// regroup rebuilds a map keyed by the iteration variable: per-key entries
// land in the same bucket regardless of iteration order.
func regroup(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, vs := range m {
		out[k] = append(out[k], vs...)
	}
	return out
}

// perIterationSink declares the buffer inside the loop body, so nothing
// ordered escapes the iteration.
func perIterationSink(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		var b strings.Builder
		b.WriteString(k)
		b.WriteString(fmt.Sprint(v))
		out[k] = b.String()
	}
	return out
}

// intAccum sums integers: exact and commutative, so order cannot change
// the result.
func intAccum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
