// Package load type-checks Go packages from source using only the
// standard library, for the two offline consumers of the rtllint suite:
// whole-module runs (cmd/rtllint standalone mode and the lint self-test)
// and analysistest fixtures. Module-internal imports are resolved by
// recursively type-checking the imported directory; standard-library
// imports go through the gc importer, which reads export data without
// network or GOPATH access.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rtltimer/internal/lint/driver"
)

// Loader resolves import paths to directories and memoizes type-checked
// packages.
type Loader struct {
	Fset *token.FileSet

	// IncludeTests adds same-package _test.go files to loaded packages.
	// The analyzers exempt test files by position, so analysistest turns
	// this on to prove the exemption; module runs leave it off (which
	// also sidesteps external test packages).
	IncludeTests bool

	// resolve maps an import path to a source directory, or ok=false to
	// delegate to the standard-library importer.
	resolve func(path string) (dir string, ok bool)

	std     types.ImporterFrom
	pkgs    map[string]*driver.Package
	loading map[string]bool
}

func newLoader(resolve func(string) (string, bool)) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		resolve: resolve,
		std:     importer.ForCompiler(fset, "gc", nil).(types.ImporterFrom),
		pkgs:    map[string]*driver.Package{},
		loading: map[string]bool{},
	}
}

// NewModule returns a loader for the module rooted at dir. The module
// path is read from go.mod; import paths under it resolve to
// subdirectories of root.
func NewModule(root string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return newLoader(func(path string) (string, bool) {
		if path == modPath {
			return root, true
		}
		if rest, ok := strings.CutPrefix(path, modPath+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rest)), true
		}
		return "", false
	}), nil
}

// NewFixture returns a loader for analysistest fixtures: import paths are
// directories under srcRoot (testdata/src), so a fixture package may use
// any import path — including real module paths like
// rtltimer/internal/sta — by placing files at that relative directory.
func NewFixture(srcRoot string) *Loader {
	return newLoader(func(path string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	})
}

// Load type-checks the package at the given import path (and,
// transitively, everything it imports) and returns it.
func (ld *Loader) Load(path string) (*driver.Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	dir, ok := ld.resolve(path)
	if !ok {
		return nil, fmt.Errorf("load: %q does not resolve to a source directory", path)
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	files, err := ld.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no non-test Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: (*loaderImporter)(ld)}
	tpkg, err := conf.Check(path, ld.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	pkg := &driver.Package{Fset: ld.Fset, Files: files, Types: tpkg, Info: info}
	ld.pkgs[path] = pkg
	return pkg, nil
}

// LoadModulePackages loads every package under the module root that
// contains non-test Go files, skipping testdata, hidden, and vendor
// directories, in deterministic path order.
func LoadModulePackages(root string) (*Loader, []*driver.Package, error) {
	ld, err := NewModule(root)
	if err != nil {
		return nil, nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, nil, err
	}
	var paths []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		has, herr := hasGoFiles(p)
		if herr != nil {
			return herr
		}
		if !has {
			return nil
		}
		rel, rerr := filepath.Rel(root, p)
		if rerr != nil {
			return rerr
		}
		if rel == "." {
			paths = append(paths, modPath)
		} else {
			paths = append(paths, modPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	var pkgs []*driver.Package
	for _, p := range paths {
		pkg, err := ld.Load(p)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return ld, pkgs, nil
}

// parseDir parses the Go files of dir in sorted name order, excluding
// _test.go files unless IncludeTests is set.
func (ld *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") {
			continue
		}
		if strings.HasSuffix(n, "_test.go") && !ld.IncludeTests {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(ld.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") {
			return true, nil
		}
	}
	return false, nil
}

// loaderImporter adapts a Loader to types.Importer for use during
// type-checking: module/fixture paths recurse into the loader, everything
// else is delegated to the gc importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	ld := (*Loader)(li)
	if _, ok := ld.resolve(path); ok {
		pkg, err := ld.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module line", gomod)
}
