package verilog

import (
	"fmt"
	"strings"
)

// Write renders the module back to Verilog source. The output parses to an
// equivalent module (used for round-trip testing and by tools that rewrite
// designs).
func (m *Module) Write() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s", m.Name)
	// Emit parameters (non-local) in a header.
	var hdr []string
	for _, p := range m.Params {
		if !p.Local {
			hdr = append(hdr, fmt.Sprintf("parameter %s = %s", p.Name, p.Value.String()))
		}
	}
	if len(hdr) > 0 {
		fmt.Fprintf(&b, " #(%s)", strings.Join(hdr, ", "))
	}
	if len(m.PortOrder) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(m.PortOrder, ", "))
	}
	b.WriteString(";\n")

	for _, p := range m.Params {
		if p.Local {
			fmt.Fprintf(&b, "  localparam %s = %s;\n", p.Name, p.Value.String())
		}
	}
	for _, d := range m.Decls {
		b.WriteString("  " + d.write() + "\n")
	}
	for _, a := range m.Assigns {
		fmt.Fprintf(&b, "  assign %s = %s;\n", a.LHS.String(), a.RHS.String())
	}
	for _, inst := range m.Instances {
		b.WriteString(inst.write())
	}
	for _, ab := range m.Always {
		b.WriteString(ab.write())
	}
	b.WriteString("endmodule\n")
	return b.String()
}

func (d *Decl) write() string {
	var b strings.Builder
	if d.IsPort {
		b.WriteString(d.Dir.String())
		b.WriteByte(' ')
		if d.IsReg {
			b.WriteString("reg ")
		}
	} else if d.IsReg {
		b.WriteString("reg ")
	} else {
		b.WriteString("wire ")
	}
	if d.Hi != nil {
		fmt.Fprintf(&b, "[%s:%s] ", d.Hi.String(), d.Lo.String())
	}
	b.WriteString(strings.Join(d.Names, ", "))
	b.WriteByte(';')
	return b.String()
}

func (inst *Instance) write() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %s", inst.ModuleName)
	if len(inst.Params) > 0 {
		var ps []string
		for _, p := range inst.Params {
			if p.Port != "" {
				ps = append(ps, fmt.Sprintf(".%s(%s)", p.Port, p.Expr.String()))
			} else {
				ps = append(ps, p.Expr.String())
			}
		}
		fmt.Fprintf(&b, " #(%s)", strings.Join(ps, ", "))
	}
	fmt.Fprintf(&b, " %s (", inst.Name)
	var cs []string
	for _, c := range inst.Conns {
		if c.Expr == nil {
			cs = append(cs, fmt.Sprintf(".%s()", c.Port))
		} else {
			cs = append(cs, fmt.Sprintf(".%s(%s)", c.Port, c.Expr.String()))
		}
	}
	b.WriteString(strings.Join(cs, ", "))
	b.WriteString(");\n")
	return b.String()
}

func (ab *AlwaysBlock) write() string {
	var b strings.Builder
	if ab.Star {
		b.WriteString("  always @(*) begin\n")
	} else {
		var evs []string
		for _, ev := range ab.Events {
			switch {
			case ev.Posedge:
				evs = append(evs, "posedge "+ev.Signal)
			case ev.Negedge:
				evs = append(evs, "negedge "+ev.Signal)
			default:
				evs = append(evs, ev.Signal)
			}
		}
		fmt.Fprintf(&b, "  always @(%s) begin\n", strings.Join(evs, " or "))
	}
	writeStmts(&b, ab.Body, 2)
	b.WriteString("  end\n")
	return b.String()
}

func writeStmts(b *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch st := s.(type) {
		case *AssignStmt:
			op := "="
			if st.NonBlocking {
				op = "<="
			}
			fmt.Fprintf(b, "%s%s %s %s;\n", ind, st.LHS.String(), op, st.RHS.String())
		case *IfStmt:
			fmt.Fprintf(b, "%sif (%s) begin\n", ind, st.Cond.String())
			writeStmts(b, st.Then, depth+1)
			if len(st.Else) > 0 {
				fmt.Fprintf(b, "%send else begin\n", ind)
				writeStmts(b, st.Else, depth+1)
			}
			fmt.Fprintf(b, "%send\n", ind)
		case *CaseStmt:
			fmt.Fprintf(b, "%scase (%s)\n", ind, st.Subject.String())
			for _, item := range st.Items {
				if len(item.Match) == 0 {
					fmt.Fprintf(b, "%s  default: begin\n", ind)
				} else {
					var ms []string
					for _, m := range item.Match {
						ms = append(ms, m.String())
					}
					fmt.Fprintf(b, "%s  %s: begin\n", ind, strings.Join(ms, ", "))
				}
				writeStmts(b, item.Body, depth+2)
				fmt.Fprintf(b, "%s  end\n", ind)
			}
			fmt.Fprintf(b, "%sendcase\n", ind)
		}
	}
}

// WriteSource renders a whole source file.
func (s *Source) WriteSource() string {
	var b strings.Builder
	for i, m := range s.Modules {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(m.Write())
	}
	return b.String()
}
