package verilog

import (
	"fmt"
	"strings"
)

// Lexer turns Verilog source text into a token stream. Comments (both //
// line and /* block */) and compiler directives (`timescale etc.) are
// skipped.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// LexError describes a lexical error with position information.
type LexError struct {
	Line, Col int
	Msg       string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("verilog: lex error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *Lexer) errf(format string, args ...any) error {
	return &LexError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '\\' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '$'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNumPart(c byte) bool {
	return isDigit(c) || c == '_' || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') ||
		c == 'x' || c == 'X' || c == 'z' || c == 'Z'
}

// skipSpace consumes whitespace, comments and compiler directives.
func (l *Lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf("unterminated block comment")
			}
		case c == '`':
			// Compiler directive: skip to end of line.
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.pos
		if c == '\\' { // escaped identifier: up to whitespace
			l.advance()
			for l.pos < len(l.src) && l.peek() != ' ' && l.peek() != '\t' && l.peek() != '\n' && l.peek() != '\r' {
				l.advance()
			}
			tok.Kind = TokIdent
			tok.Text = strings.TrimPrefix(l.src[start:l.pos], "\\")
			return tok, nil
		}
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		tok.Text = l.src[start:l.pos]
		if kw, ok := keywords[tok.Text]; ok {
			tok.Kind = kw
		} else {
			tok.Kind = TokIdent
		}
		return tok, nil
	case isDigit(c) || (c == '\'' && l.pos+1 < len(l.src)):
		start := l.pos
		for l.pos < len(l.src) && (isDigit(l.peek()) || l.peek() == '_') {
			l.advance()
		}
		if l.peek() == '\'' {
			l.advance() // '
			// Base char: b, o, d, h (optionally preceded by s for signed).
			if l.peek() == 's' || l.peek() == 'S' {
				l.advance()
			}
			switch l.peek() {
			case 'b', 'B', 'o', 'O', 'd', 'D', 'h', 'H':
				l.advance()
			default:
				return tok, l.errf("invalid number base %q", string(l.peek()))
			}
			for l.pos < len(l.src) && isNumPart(l.peek()) {
				l.advance()
			}
		}
		tok.Kind = TokNumber
		tok.Text = l.src[start:l.pos]
		return tok, nil
	case c == '"':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && l.peek() != '"' {
			l.advance()
		}
		if l.pos >= len(l.src) {
			return tok, l.errf("unterminated string")
		}
		tok.Kind = TokString
		tok.Text = l.src[start:l.pos]
		l.advance()
		return tok, nil
	}
	// Operators and punctuation.
	l.advance()
	two := func(second byte, yes, no TokenKind) TokenKind {
		if l.peek() == second {
			l.advance()
			return yes
		}
		return no
	}
	switch c {
	case '(':
		tok.Kind = TokLParen
	case ')':
		tok.Kind = TokRParen
	case '[':
		tok.Kind = TokLBracket
	case ']':
		tok.Kind = TokRBracket
	case '{':
		tok.Kind = TokLBrace
	case '}':
		tok.Kind = TokRBrace
	case ';':
		tok.Kind = TokSemi
	case ',':
		tok.Kind = TokComma
	case ':':
		tok.Kind = TokColon
	case '.':
		tok.Kind = TokDot
	case '#':
		tok.Kind = TokHash
	case '@':
		tok.Kind = TokAt
	case '?':
		tok.Kind = TokQuestion
	case '+':
		tok.Kind = TokPlus
	case '-':
		tok.Kind = TokMinus
	case '*':
		tok.Kind = TokStar
	case '/':
		tok.Kind = TokSlash
	case '%':
		tok.Kind = TokPct
	case '&':
		tok.Kind = two('&', TokLAnd, TokAnd)
	case '|':
		tok.Kind = two('|', TokLOr, TokOr)
	case '^':
		tok.Kind = two('~', TokXnor, TokXor)
	case '~':
		if l.peek() == '^' {
			l.advance()
			tok.Kind = TokXnor
		} else if l.peek() == '&' {
			l.advance()
			tok.Kind = TokNot // ~& treated as NOT(AND-reduce); parser handles via unary
			tok.Text = "~&"
		} else if l.peek() == '|' {
			l.advance()
			tok.Kind = TokNot
			tok.Text = "~|"
		} else {
			tok.Kind = TokNot
		}
	case '!':
		tok.Kind = two('=', TokNeq, TokLNot)
	case '=':
		if l.peek() == '=' {
			l.advance()
			if l.peek() == '=' {
				l.advance()
				tok.Kind = TokCaseEq
			} else {
				tok.Kind = TokEq
			}
		} else {
			tok.Kind = TokAssign
		}
	case '<':
		if l.peek() == '=' {
			l.advance()
			tok.Kind = TokNBAssign
		} else if l.peek() == '<' {
			l.advance()
			tok.Kind = TokShl
		} else {
			tok.Kind = TokLt
		}
	case '>':
		if l.peek() == '=' {
			l.advance()
			tok.Kind = TokGe
		} else if l.peek() == '>' {
			l.advance()
			tok.Kind = TokShr
		} else {
			tok.Kind = TokGt
		}
	default:
		return tok, l.errf("unexpected character %q", string(c))
	}
	return tok, nil
}

// Tokenize lexes the whole input, returning all tokens up to and including
// the EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
