package verilog

import "testing"

func TestWriteRoundTripALU(t *testing.T) {
	p1, err := Parse(sampleALU)
	if err != nil {
		t.Fatal(err)
	}
	out := p1.WriteSource()
	p2, err := Parse(out)
	if err != nil {
		t.Fatalf("printed source does not parse: %v\n%s", err, out)
	}
	m1, m2 := p1.Top(), p2.Top()
	if m1.Name != m2.Name {
		t.Errorf("module name: %s vs %s", m1.Name, m2.Name)
	}
	if len(m1.Decls) != len(m2.Decls) || len(m1.Assigns) != len(m2.Assigns) ||
		len(m1.Always) != len(m2.Always) {
		t.Errorf("structure changed: decls %d/%d assigns %d/%d always %d/%d",
			len(m1.Decls), len(m2.Decls), len(m1.Assigns), len(m2.Assigns),
			len(m1.Always), len(m2.Always))
	}
	// The printer must be a fixed point after one round.
	out2 := p2.WriteSource()
	p3, err := Parse(out2)
	if err != nil {
		t.Fatal(err)
	}
	if p3.WriteSource() != out2 {
		t.Error("printer is not a fixed point")
	}
}

func TestWriteHierarchy(t *testing.T) {
	src := `
module sub #(parameter W = 4) (input [W-1:0] x, output [W-1:0] y);
  assign y = ~x;
endmodule
module top(input [7:0] a, output [7:0] b);
  sub #(.W(8)) u0 (.x(a), .y(b));
endmodule`
	p1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(p1.WriteSource())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, p1.WriteSource())
	}
	if len(p2.Modules) != 2 || len(p2.Top().Instances) != 1 {
		t.Errorf("hierarchy lost: %d modules", len(p2.Modules))
	}
	inst := p2.Top().Instances[0]
	if inst.ModuleName != "sub" || len(inst.Params) != 1 || inst.Params[0].Port != "W" {
		t.Errorf("instance: %+v", inst)
	}
}
