package verilog

import (
	"fmt"
)

// Parser is a recursive-descent parser for the supported Verilog subset.
type Parser struct {
	toks []Token
	pos  int
}

// ParseError is a syntax error with source position.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("verilog: parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse lexes and parses a complete source file.
func Parse(src string) (*Source, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	out := &Source{}
	for p.cur().Kind != TokEOF {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		out.Modules = append(out.Modules, m)
	}
	if len(out.Modules) == 0 {
		return nil, fmt.Errorf("verilog: no modules found")
	}
	return out, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) peekKind(k TokenKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokenKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) errf(format string, args ...any) error {
	t := p.cur()
	return &ParseError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(k TokenKind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) parseModule() (*Module, error) {
	start, err := p.expect(TokModule)
	if err != nil {
		return nil, err
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	m := &Module{Name: nameTok.Text, Line: start.Line}

	// Optional #(parameter ...) header.
	if p.accept(TokHash) {
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		for {
			if p.accept(TokParameter) {
				// fallthrough to name=value
			}
			nt, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokAssign); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			m.Params = append(m.Params, &Param{Name: nt.Text, Value: val})
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}

	// Port list: either simple names or ANSI-style declarations.
	if p.accept(TokLParen) {
		if !p.peekKind(TokRParen) {
			for {
				switch p.cur().Kind {
				case TokInput, TokOutput, TokInout:
					d, err := p.parseANSIPortDecl()
					if err != nil {
						return nil, err
					}
					m.Decls = append(m.Decls, d)
					m.PortOrder = append(m.PortOrder, d.Names...)
				case TokIdent:
					m.PortOrder = append(m.PortOrder, p.next().Text)
				default:
					return nil, p.errf("expected port name or direction, found %s", p.cur())
				}
				if !p.accept(TokComma) {
					break
				}
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}

	// Module items.
	for {
		switch p.cur().Kind {
		case TokEndModule:
			p.next()
			return m, nil
		case TokEOF:
			return nil, p.errf("unexpected EOF inside module %s", m.Name)
		case TokInput, TokOutput, TokInout:
			d, err := p.parsePortDecl()
			if err != nil {
				return nil, err
			}
			m.Decls = append(m.Decls, d)
		case TokWire, TokReg:
			d, err := p.parseNetDecl(m)
			if err != nil {
				return nil, err
			}
			// A `reg` re-declaration of an output port marks that port reg.
			p.mergeDecl(m, d)
		case TokInteger, TokGenvar:
			// Treated as 32-bit regs for elaboration purposes.
			p.next()
			d := &Decl{IsReg: true, Hi: &Number{Value: 31, Width: 32}, Lo: &Number{Value: 0, Width: 32}, Line: p.cur().Line}
			for {
				nt, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				d.Names = append(d.Names, nt.Text)
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			m.Decls = append(m.Decls, d)
		case TokParameter, TokLocalParam:
			local := p.cur().Kind == TokLocalParam
			p.next()
			// Optional range on parameters: skip it.
			if p.accept(TokLBracket) {
				if _, err := p.parseExpr(); err != nil {
					return nil, err
				}
				if _, err := p.expect(TokColon); err != nil {
					return nil, err
				}
				if _, err := p.parseExpr(); err != nil {
					return nil, err
				}
				if _, err := p.expect(TokRBracket); err != nil {
					return nil, err
				}
			}
			for {
				nt, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokAssign); err != nil {
					return nil, err
				}
				val, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				m.Params = append(m.Params, &Param{Name: nt.Text, Value: val, Local: local})
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
		case TokAssignKW:
			p.next()
			for {
				lhs, err := p.parsePrimary()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokAssign); err != nil {
					return nil, err
				}
				rhs, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				m.Assigns = append(m.Assigns, &ContAssign{LHS: lhs, RHS: rhs, Line: p.cur().Line})
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
		case TokAlways:
			ab, err := p.parseAlways()
			if err != nil {
				return nil, err
			}
			m.Always = append(m.Always, ab)
		case TokIdent:
			inst, err := p.parseInstance()
			if err != nil {
				return nil, err
			}
			m.Instances = append(m.Instances, inst)
		default:
			return nil, p.errf("unexpected %s in module body", p.cur())
		}
	}
}

// mergeDecl merges a wire/reg declaration into the module, upgrading an
// existing port declaration to reg when names collide.
func (p *Parser) mergeDecl(m *Module, d *Decl) {
	var fresh []string
	for _, n := range d.Names {
		if prev := m.DeclOf(n); prev != nil {
			if d.IsReg {
				prev.IsReg = true
			}
			continue
		}
		fresh = append(fresh, n)
	}
	if len(fresh) > 0 {
		d.Names = fresh
		m.Decls = append(m.Decls, d)
	}
}

func (p *Parser) parseRangeOpt() (hi, lo Expr, err error) {
	if !p.accept(TokLBracket) {
		return nil, nil, nil
	}
	hi, err = p.parseExpr()
	if err != nil {
		return nil, nil, err
	}
	if _, err = p.expect(TokColon); err != nil {
		return nil, nil, err
	}
	lo, err = p.parseExpr()
	if err != nil {
		return nil, nil, err
	}
	if _, err = p.expect(TokRBracket); err != nil {
		return nil, nil, err
	}
	return hi, lo, nil
}

// parseANSIPortDecl parses "input [7:0] a" style declarations inside the
// module port list (names continue until a direction keyword or ')').
func (p *Parser) parseANSIPortDecl() (*Decl, error) {
	d := &Decl{IsPort: true, Line: p.cur().Line}
	switch p.next().Kind {
	case TokInput:
		d.Dir = DirInput
	case TokOutput:
		d.Dir = DirOutput
	case TokInout:
		d.Dir = DirInout
	}
	if p.accept(TokReg) {
		d.IsReg = true
	}
	p.accept(TokWire)
	var err error
	d.Hi, d.Lo, err = p.parseRangeOpt()
	if err != nil {
		return nil, err
	}
	nt, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d.Names = []string{nt.Text}
	return d, nil
}

// parsePortDecl parses a non-ANSI port declaration item:
// "input [7:0] a, b;".
func (p *Parser) parsePortDecl() (*Decl, error) {
	d := &Decl{IsPort: true, Line: p.cur().Line}
	switch p.next().Kind {
	case TokInput:
		d.Dir = DirInput
	case TokOutput:
		d.Dir = DirOutput
	case TokInout:
		d.Dir = DirInout
	}
	if p.accept(TokReg) {
		d.IsReg = true
	}
	p.accept(TokWire)
	var err error
	d.Hi, d.Lo, err = p.parseRangeOpt()
	if err != nil {
		return nil, err
	}
	for {
		nt, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		d.Names = append(d.Names, nt.Text)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

// parseNetDecl parses "wire [3:0] w1, w2;" or "reg [3:0] r;" possibly with
// an initializer on wires ("wire x = a & b;" becomes a decl + assign).
func (p *Parser) parseNetDecl(m *Module) (*Decl, error) {
	d := &Decl{Line: p.cur().Line}
	d.IsReg = p.next().Kind == TokReg
	var err error
	d.Hi, d.Lo, err = p.parseRangeOpt()
	if err != nil {
		return nil, err
	}
	for {
		nt, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		d.Names = append(d.Names, nt.Text)
		// Memories (reg [7:0] mem [0:63]) are not supported: reject clearly.
		if p.peekKind(TokLBracket) {
			return nil, p.errf("memory arrays are not supported (signal %s)", nt.Text)
		}
		// "wire x = expr;" net initializer becomes a continuous assignment.
		if !d.IsReg && p.accept(TokAssign) {
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			m.Assigns = append(m.Assigns, &ContAssign{
				LHS:  &Ident{Name: nt.Text, Line: nt.Line},
				RHS:  rhs,
				Line: nt.Line,
			})
		}
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseAlways() (*AlwaysBlock, error) {
	start, err := p.expect(TokAlways)
	if err != nil {
		return nil, err
	}
	ab := &AlwaysBlock{Line: start.Line}
	if _, err := p.expect(TokAt); err != nil {
		return nil, err
	}
	if p.accept(TokStar) {
		ab.Star = true
	} else {
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		if p.accept(TokStar) {
			ab.Star = true
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
		} else {
			for {
				ev := EdgeEvent{}
				if p.accept(TokPosedge) {
					ev.Posedge = true
				} else if p.accept(TokNegedge) {
					ev.Negedge = true
				}
				nt, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				ev.Signal = nt.Text
				ab.Events = append(ab.Events, ev)
				if !p.accept(TokOrKW) && !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			// Sensitivity on plain signals (no edge) == combinational.
			allPlain := true
			for _, ev := range ab.Events {
				if ev.Posedge || ev.Negedge {
					allPlain = false
				}
			}
			if allPlain {
				ab.Star = true
				ab.Events = nil
			}
		}
	}
	body, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	ab.Body = body
	return ab, nil
}

func (p *Parser) parseStmtOrBlock() ([]Stmt, error) {
	if p.accept(TokBegin) {
		// Optional block label.
		if p.accept(TokColon) {
			if _, err := p.expect(TokIdent); err != nil {
				return nil, err
			}
		}
		var stmts []Stmt
		for !p.accept(TokEnd) {
			if p.peekKind(TokEOF) {
				return nil, p.errf("unexpected EOF in begin/end block")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if s != nil {
				stmts = append(stmts, s)
			}
		}
		return stmts, nil
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, nil
	}
	return []Stmt{s}, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokSemi:
		p.next()
		return nil, nil
	case TokIf:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		thenB, err := p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: thenB}
		if p.accept(TokElse) {
			elseB, err := p.parseStmtOrBlock()
			if err != nil {
				return nil, err
			}
			st.Else = elseB
		}
		return st, nil
	case TokCase, TokCasez:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		subj, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		cs := &CaseStmt{Subject: subj}
		for !p.accept(TokEndCase) {
			if p.peekKind(TokEOF) {
				return nil, p.errf("unexpected EOF in case")
			}
			item := CaseItem{}
			if p.accept(TokDefault) {
				p.accept(TokColon)
			} else {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					item.Match = append(item.Match, e)
					if !p.accept(TokComma) {
						break
					}
				}
				if _, err := p.expect(TokColon); err != nil {
					return nil, err
				}
			}
			body, err := p.parseStmtOrBlock()
			if err != nil {
				return nil, err
			}
			item.Body = body
			cs.Items = append(cs.Items, item)
		}
		return cs, nil
	case TokBegin:
		body, err := p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
		// Represent a bare begin/end as an if(1) wrapper-free list; fold into
		// an IfStmt with constant true to keep Stmt single-valued.
		return &IfStmt{Cond: &Number{Value: 1, Width: 1, Sized: true}, Then: body}, nil
	default:
		lhs, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		st := &AssignStmt{LHS: lhs, Line: p.cur().Line}
		switch p.cur().Kind {
		case TokAssign:
			p.next()
		case TokNBAssign:
			p.next()
			st.NonBlocking = true
		default:
			return nil, p.errf("expected = or <= in assignment, found %s", p.cur())
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.RHS = rhs
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return st, nil
	}
}

func (p *Parser) parseInstance() (*Instance, error) {
	modTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	inst := &Instance{ModuleName: modTok.Text, Line: modTok.Line}
	if p.accept(TokHash) {
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		for {
			if p.accept(TokDot) {
				nt, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokLParen); err != nil {
					return nil, err
				}
				val, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
				inst.Params = append(inst.Params, PortConn{Port: nt.Text, Expr: val})
			} else {
				val, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				inst.Params = append(inst.Params, PortConn{Expr: val})
			}
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	inst.Name = nameTok.Text
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if !p.peekKind(TokRParen) {
		for {
			if _, err := p.expect(TokDot); err != nil {
				return nil, err
			}
			nt, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokLParen); err != nil {
				return nil, err
			}
			conn := PortConn{Port: nt.Text}
			if !p.peekKind(TokRParen) {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				conn.Expr = e
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			inst.Conns = append(inst.Conns, conn)
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return inst, nil
}

// ---- Expression parsing (precedence climbing) ----

// Binary operator precedence, higher binds tighter. Mirrors Verilog.
var binPrec = map[TokenKind]int{
	TokLOr:      1,
	TokLAnd:     2,
	TokOr:       3,
	TokXor:      4,
	TokXnor:     4,
	TokAnd:      5,
	TokEq:       6,
	TokNeq:      6,
	TokCaseEq:   6,
	TokLt:       7,
	TokGt:       7,
	TokGe:       7,
	TokNBAssign: 7, // "<=" in expression context means less-or-equal
	TokShl:      8,
	TokShr:      8,
	TokPlus:     9,
	TokMinus:    9,
	TokStar:     10,
	TokSlash:    10,
	TokPct:      10,
}

var binOpText = map[TokenKind]string{
	TokLOr: "||", TokLAnd: "&&", TokOr: "|", TokXor: "^", TokXnor: "~^",
	TokAnd: "&", TokEq: "==", TokNeq: "!=", TokCaseEq: "==", TokLt: "<",
	TokGt: ">", TokGe: ">=", TokNBAssign: "<=", TokShl: "<<", TokShr: ">>",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/", TokPct: "%",
}

func (p *Parser) parseExpr() (Expr, error) {
	return p.parseTernary()
}

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.accept(TokQuestion) {
		return cond, nil
	}
	t, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	f, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &Ternary{Cond: cond, T: t, F: f}, nil
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		opTok := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: binOpText[opTok.Kind], L: lhs, R: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokNot:
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		op := "~"
		if t.Text == "~&" || t.Text == "~|" {
			op = t.Text
		}
		return &Unary{Op: op, X: x}, nil
	case TokLNot:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "!", X: x}, nil
	case TokMinus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	case TokPlus:
		p.next()
		return p.parseUnary()
	case TokAnd:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "&", X: x}, nil
	case TokOr:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "|", X: x}, nil
	case TokXor:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "^", X: x}, nil
	case TokXnor:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "~^", X: x}, nil
	default:
		return p.parsePostfix()
	}
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return e, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.cur().Kind {
	case TokNumber:
		t := p.next()
		n, err := ParseNumber(t.Text)
		if err != nil {
			return nil, err
		}
		n.Line = t.Line
		return n, nil
	case TokIdent:
		t := p.next()
		var e Expr = &Ident{Name: t.Text, Line: t.Line}
		for p.peekKind(TokLBracket) {
			p.next()
			first, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.accept(TokColon) {
				lo, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokRBracket); err != nil {
					return nil, err
				}
				e = &Range{X: e, Hi: first, Lo: lo}
			} else {
				if _, err := p.expect(TokRBracket); err != nil {
					return nil, err
				}
				e = &Index{X: e, Idx: first}
			}
		}
		return e, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokLBrace:
		p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		// Replication: {N{expr}}
		if p.peekKind(TokLBrace) {
			p.next()
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBrace); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBrace); err != nil {
				return nil, err
			}
			return &Repl{Count: first, X: inner}, nil
		}
		c := &Concat{Parts: []Expr{first}}
		for p.accept(TokComma) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, e)
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
		return c, nil
	default:
		return nil, p.errf("unexpected %s in expression", p.cur())
	}
}
