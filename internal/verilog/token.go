// Package verilog implements a lexer, parser and AST for the synthesizable
// Verilog-2001 subset consumed by RTL-Timer. The subset covers module
// declarations with port lists, wire/reg/input/output declarations with bit
// ranges, parameters, continuous assignments, always blocks (both
// @(posedge clk) sequential and @(*) combinational), if/else and case
// statements, module instantiation with named port connections, and the
// expression grammar needed for realistic datapaths: arithmetic, logical,
// bitwise, reduction, shift, comparison, concatenation, replication,
// bit select, part select and the conditional operator.
package verilog

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds. Keywords get their own kind so the parser can switch on them
// directly.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber // 12, 8'hFF, 4'b1010, 3'd7
	TokString

	// Punctuation and operators.
	TokLParen   // (
	TokRParen   // )
	TokLBracket // [
	TokRBracket // ]
	TokLBrace   // {
	TokRBrace   // }
	TokSemi     // ;
	TokComma    // ,
	TokColon    // :
	TokDot      // .
	TokHash     // #
	TokAt       // @
	TokAssign   // =
	TokNBAssign // <=  (context decides: nonblocking assign or less-equal)
	TokQuestion // ?

	TokPlus   // +
	TokMinus  // -
	TokStar   // *
	TokSlash  // /
	TokPct    // %
	TokAnd    // &
	TokOr     // |
	TokXor    // ^
	TokXnor   // ~^ or ^~
	TokNot    // ~
	TokLAnd   // &&
	TokLOr    // ||
	TokLNot   // !
	TokEq     // ==
	TokNeq    // !=
	TokCaseEq // ===
	TokLt     // <
	TokGt     // >
	TokGe     // >=
	TokShl    // <<
	TokShr    // >>

	// Keywords.
	TokModule
	TokEndModule
	TokInput
	TokOutput
	TokInout
	TokWire
	TokReg
	TokAssignKW // assign
	TokAlways
	TokPosedge
	TokNegedge
	TokBegin
	TokEnd
	TokIf
	TokElse
	TokCase
	TokCasez
	TokEndCase
	TokDefault
	TokParameter
	TokLocalParam
	TokInteger
	TokGenvar
	TokFunction
	TokEndFunction
	TokOrKW // "or" inside sensitivity lists
)

var keywords = map[string]TokenKind{
	"module":      TokModule,
	"endmodule":   TokEndModule,
	"input":       TokInput,
	"output":      TokOutput,
	"inout":       TokInout,
	"wire":        TokWire,
	"reg":         TokReg,
	"assign":      TokAssignKW,
	"always":      TokAlways,
	"posedge":     TokPosedge,
	"negedge":     TokNegedge,
	"begin":       TokBegin,
	"end":         TokEnd,
	"if":          TokIf,
	"else":        TokElse,
	"case":        TokCase,
	"casez":       TokCasez,
	"endcase":     TokEndCase,
	"default":     TokDefault,
	"parameter":   TokParameter,
	"localparam":  TokLocalParam,
	"integer":     TokInteger,
	"genvar":      TokGenvar,
	"function":    TokFunction,
	"endfunction": TokEndFunction,
	"or":          TokOrKW,
}

var tokenNames = map[TokenKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokNumber: "number", TokString: "string",
	TokLParen: "(", TokRParen: ")", TokLBracket: "[", TokRBracket: "]",
	TokLBrace: "{", TokRBrace: "}", TokSemi: ";", TokComma: ",", TokColon: ":",
	TokDot: ".", TokHash: "#", TokAt: "@", TokAssign: "=", TokNBAssign: "<=",
	TokQuestion: "?", TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/",
	TokPct: "%", TokAnd: "&", TokOr: "|", TokXor: "^", TokXnor: "~^", TokNot: "~",
	TokLAnd: "&&", TokLOr: "||", TokLNot: "!", TokEq: "==", TokNeq: "!=",
	TokCaseEq: "===", TokLt: "<", TokGt: ">", TokGe: ">=", TokShl: "<<", TokShr: ">>",
	TokModule: "module", TokEndModule: "endmodule", TokInput: "input",
	TokOutput: "output", TokInout: "inout", TokWire: "wire", TokReg: "reg",
	TokAssignKW: "assign", TokAlways: "always", TokPosedge: "posedge",
	TokNegedge: "negedge", TokBegin: "begin", TokEnd: "end", TokIf: "if",
	TokElse: "else", TokCase: "case", TokCasez: "casez", TokEndCase: "endcase",
	TokDefault: "default", TokParameter: "parameter", TokLocalParam: "localparam",
	TokInteger: "integer", TokGenvar: "genvar", TokFunction: "function",
	TokEndFunction: "endfunction", TokOrKW: "or",
}

// String returns a human-readable name for the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is a single lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokIdent || t.Kind == TokNumber {
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	}
	return t.Kind.String()
}
