package verilog

import (
	"fmt"
	"strconv"
	"strings"
)

// ---- Expressions ----

// Expr is a Verilog expression node.
type Expr interface {
	exprNode()
	// String renders the expression back as Verilog source.
	String() string
}

// Ident is a reference to a named signal or parameter.
type Ident struct {
	Name string
	Line int
}

// Number is a literal constant. Width 0 means unsized (context decides).
type Number struct {
	Width int    // declared width (0 = unsized)
	Value uint64 // value (x/z treated as 0)
	Sized bool
	Line  int
	orig  string
}

// Unary is a prefix operator application. Op is one of
// ~ ! - + & | ^ ~& ~| ~^ (reduction and logical variants).
type Unary struct {
	Op string
	X  Expr
}

// Binary is an infix operator application.
type Binary struct {
	Op   string
	L, R Expr
}

// Ternary is cond ? t : f.
type Ternary struct {
	Cond, T, F Expr
}

// Index is a bit select x[i].
type Index struct {
	X   Expr
	Idx Expr
}

// Range is a part select x[hi:lo]; bounds must be constant.
type Range struct {
	X      Expr
	Hi, Lo Expr
}

// Concat is {a, b, c}.
type Concat struct {
	Parts []Expr
}

// Repl is {n{x}}.
type Repl struct {
	Count Expr
	X     Expr
}

// Cast forces an expression to an explicit width (zero-extend or truncate).
// It is never produced by the parser; elaboration inserts it when splitting
// assignments. It prints as its inner expression.
type Cast struct {
	X Expr
	W int
}

func (*Ident) exprNode()   {}
func (*Number) exprNode()  {}
func (*Unary) exprNode()   {}
func (*Binary) exprNode()  {}
func (*Ternary) exprNode() {}
func (*Index) exprNode()   {}
func (*Range) exprNode()   {}
func (*Concat) exprNode()  {}
func (*Repl) exprNode()    {}
func (*Cast) exprNode()    {}

func (e *Cast) String() string { return e.X.String() }

func (e *Ident) String() string { return e.Name }

func (e *Number) String() string {
	if e.orig != "" {
		return e.orig
	}
	if e.Sized {
		return fmt.Sprintf("%d'd%d", e.Width, e.Value)
	}
	return strconv.FormatUint(e.Value, 10)
}

func (e *Unary) String() string   { return e.Op + parens(e.X) }
func (e *Binary) String() string  { return parens(e.L) + " " + e.Op + " " + parens(e.R) }
func (e *Ternary) String() string { return parens(e.Cond) + " ? " + parens(e.T) + " : " + parens(e.F) }
func (e *Index) String() string   { return parens(e.X) + "[" + e.Idx.String() + "]" }
func (e *Range) String() string {
	return parens(e.X) + "[" + e.Hi.String() + ":" + e.Lo.String() + "]"
}
func (e *Concat) String() string {
	parts := make([]string, len(e.Parts))
	for i, p := range e.Parts {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
func (e *Repl) String() string { return "{" + e.Count.String() + "{" + e.X.String() + "}}" }

func parens(e Expr) string {
	switch e.(type) {
	case *Ident, *Number, *Index, *Range, *Concat, *Repl:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// ---- Statements (inside always blocks) ----

// Stmt is a procedural statement.
type Stmt interface {
	stmtNode()
}

// AssignStmt is a blocking (=) or nonblocking (<=) procedural assignment.
type AssignStmt struct {
	LHS         Expr // Ident, Index or Range
	RHS         Expr
	NonBlocking bool
	Line        int
}

// IfStmt is if (cond) then else.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // nil when absent
}

// CaseItem is one arm of a case statement.
type CaseItem struct {
	// Match expressions; empty means the default arm.
	Match []Expr
	Body  []Stmt
}

// CaseStmt is case (subject) ... endcase.
type CaseStmt struct {
	Subject Expr
	Items   []CaseItem
}

func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*CaseStmt) stmtNode()   {}

// ---- Module structure ----

// PortDir is the direction of a module port.
type PortDir int

// Port directions.
const (
	DirInput PortDir = iota
	DirOutput
	DirInout
)

func (d PortDir) String() string {
	switch d {
	case DirInput:
		return "input"
	case DirOutput:
		return "output"
	default:
		return "inout"
	}
}

// Decl declares one or more nets or variables with a shared range.
type Decl struct {
	Names  []string
	Hi, Lo Expr // nil for scalar
	IsReg  bool
	Dir    PortDir // valid only when IsPort
	IsPort bool
	Line   int
}

// Width returns the declared width given a parameter resolver; scalar = 1.
func (d *Decl) Width(eval func(Expr) (int64, error)) (int, error) {
	if d.Hi == nil {
		return 1, nil
	}
	hi, err := eval(d.Hi)
	if err != nil {
		return 0, err
	}
	lo, err := eval(d.Lo)
	if err != nil {
		return 0, err
	}
	if hi < lo {
		hi, lo = lo, hi
	}
	return int(hi - lo + 1), nil
}

// Param is a parameter or localparam definition.
type Param struct {
	Name  string
	Value Expr
	Local bool
}

// ContAssign is a continuous assignment: assign lhs = rhs.
type ContAssign struct {
	LHS  Expr
	RHS  Expr
	Line int
}

// EdgeEvent describes one event in a sensitivity list.
type EdgeEvent struct {
	Posedge bool
	Negedge bool
	Signal  string // empty for @(*)
}

// AlwaysBlock is an always process.
type AlwaysBlock struct {
	Events []EdgeEvent // empty slice means @(*)
	Star   bool
	Body   []Stmt
	Line   int
}

// PortConn is a named connection in a module instance.
type PortConn struct {
	Port string
	Expr Expr // nil for unconnected
}

// Instance is a module instantiation.
type Instance struct {
	ModuleName string
	Name       string
	Params     []PortConn // named parameter overrides
	Conns      []PortConn
	Line       int
}

// Module is a parsed Verilog module.
type Module struct {
	Name      string
	PortOrder []string
	Decls     []*Decl
	Params    []*Param
	Assigns   []*ContAssign
	Always    []*AlwaysBlock
	Instances []*Instance
	Line      int
}

// Source is a parsed source file: one or more modules.
type Source struct {
	Modules []*Module
}

// FindModule returns the module with the given name, or nil.
func (s *Source) FindModule(name string) *Module {
	for _, m := range s.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Top returns the top-level module: the unique module never instantiated by
// another. If several qualify the first declared one wins.
func (s *Source) Top() *Module {
	instantiated := map[string]bool{}
	for _, m := range s.Modules {
		for _, inst := range m.Instances {
			instantiated[inst.ModuleName] = true
		}
	}
	for _, m := range s.Modules {
		if !instantiated[m.Name] {
			return m
		}
	}
	if len(s.Modules) > 0 {
		return s.Modules[0]
	}
	return nil
}

// DeclOf returns the declaration covering the named signal, or nil.
func (m *Module) DeclOf(name string) *Decl {
	for _, d := range m.Decls {
		for _, n := range d.Names {
			if n == name {
				return d
			}
		}
	}
	return nil
}

// ParseNumber parses a Verilog numeric literal (e.g. "8'hFF", "4'b1010",
// "13"). x and z digits are mapped to 0.
func ParseNumber(text string) (*Number, error) {
	n := &Number{orig: text}
	quote := strings.IndexByte(text, '\'')
	if quote < 0 {
		v, err := strconv.ParseUint(strings.ReplaceAll(text, "_", ""), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("verilog: bad number %q: %w", text, err)
		}
		n.Value = v
		n.Width = 32
		return n, nil
	}
	n.Sized = true
	widthPart := strings.TrimSpace(text[:quote])
	if widthPart == "" {
		n.Width = 32
	} else {
		w, err := strconv.Atoi(widthPart)
		if err != nil || w <= 0 || w > 64 {
			return nil, fmt.Errorf("verilog: bad width in %q", text)
		}
		n.Width = w
	}
	rest := text[quote+1:]
	if rest == "" {
		return nil, fmt.Errorf("verilog: bad number %q", text)
	}
	if rest[0] == 's' || rest[0] == 'S' {
		rest = rest[1:]
	}
	if rest == "" {
		return nil, fmt.Errorf("verilog: bad number %q", text)
	}
	base := 10
	switch rest[0] {
	case 'b', 'B':
		base = 2
	case 'o', 'O':
		base = 8
	case 'd', 'D':
		base = 10
	case 'h', 'H':
		base = 16
	default:
		return nil, fmt.Errorf("verilog: bad base in %q", text)
	}
	digits := strings.ReplaceAll(rest[1:], "_", "")
	digits = strings.Map(func(r rune) rune {
		if r == 'x' || r == 'X' || r == 'z' || r == 'Z' {
			return '0'
		}
		return r
	}, digits)
	if digits == "" {
		return nil, fmt.Errorf("verilog: empty digits in %q", text)
	}
	v, err := strconv.ParseUint(digits, base, 64)
	if err != nil {
		return nil, fmt.Errorf("verilog: bad number %q: %w", text, err)
	}
	if n.Width < 64 {
		v &= (1 << uint(n.Width)) - 1
	}
	n.Value = v
	return n, nil
}
