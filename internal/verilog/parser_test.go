package verilog

import (
	"strings"
	"testing"
	"testing/quick"
)

const sampleALU = `
// Simple pipelined ALU used across the test suite.
module alu (
    input clk,
    input rst,
    input [7:0] a,
    input [7:0] b,
    input [1:0] op,
    output reg [7:0] y
);
  wire [7:0] sum = a + b;
  wire [7:0] diff = a - b;
  wire [7:0] band = a & b;
  wire [7:0] bxor = a ^ b;
  reg [7:0] stage;

  always @(*) begin
    case (op)
      2'b00: stage = sum;
      2'b01: stage = diff;
      2'b10: stage = band;
      default: stage = bxor;
    endcase
  end

  always @(posedge clk) begin
    if (rst)
      y <= 8'h00;
    else
      y <= stage;
  end
endmodule
`

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("module m; endmodule")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokModule, TokIdent, TokSemi, TokEndModule, TokEOF}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d (%v)", len(toks), len(want), toks)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	cases := map[string]TokenKind{
		"&&": TokLAnd, "||": TokLOr, "==": TokEq, "!=": TokNeq,
		"<<": TokShl, ">>": TokShr, "<=": TokNBAssign, ">=": TokGe,
		"~^": TokXnor, "^~": TokXnor, "===": TokCaseEq,
	}
	for src, want := range cases {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if toks[0].Kind != want {
			t.Errorf("%q: got %v, want %v", src, toks[0].Kind, want)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("a // line\n /* block\n comment */ b `define X 1\n c")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, tk := range toks {
		if tk.Kind == TokIdent {
			names = append(names, tk.Text)
		}
	}
	if strings.Join(names, ",") != "a,b,c" {
		t.Errorf("got idents %v", names)
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{"/* unterminated", "\"unterminated", "$"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		}
	}
}

func TestParseNumber(t *testing.T) {
	cases := []struct {
		in    string
		width int
		val   uint64
	}{
		{"13", 32, 13},
		{"8'hFF", 8, 255},
		{"8'hff", 8, 255},
		{"4'b1010", 4, 10},
		{"3'd7", 3, 7},
		{"8'o17", 8, 15},
		{"16'h1_0", 16, 16},
		{"4'bxx10", 4, 2}, // x -> 0
		{"2'd7", 2, 3},    // truncated to width
	}
	for _, c := range cases {
		n, err := ParseNumber(c.in)
		if err != nil {
			t.Fatalf("ParseNumber(%q): %v", c.in, err)
		}
		if n.Width != c.width || n.Value != c.val {
			t.Errorf("ParseNumber(%q) = width %d val %d, want %d %d", c.in, n.Width, n.Value, c.width, c.val)
		}
	}
	for _, bad := range []string{"8'q12", "'", "4'b", "abc'h12x!"} {
		if _, err := ParseNumber(bad); err == nil {
			t.Errorf("ParseNumber(%q): expected error", bad)
		}
	}
}

func TestParseALU(t *testing.T) {
	src, err := Parse(sampleALU)
	if err != nil {
		t.Fatal(err)
	}
	m := src.Top()
	if m == nil || m.Name != "alu" {
		t.Fatalf("top module: %+v", m)
	}
	if len(m.PortOrder) != 6 {
		t.Errorf("ports: got %v", m.PortOrder)
	}
	if got := len(m.Assigns); got != 4 {
		t.Errorf("assigns: got %d, want 4", got)
	}
	if got := len(m.Always); got != 2 {
		t.Errorf("always blocks: got %d, want 2", got)
	}
	if !m.Always[0].Star {
		t.Error("first always should be combinational")
	}
	if m.Always[1].Star || !m.Always[1].Events[0].Posedge {
		t.Error("second always should be posedge-sensitive")
	}
	yDecl := m.DeclOf("y")
	if yDecl == nil || !yDecl.IsReg || yDecl.Dir != DirOutput {
		t.Errorf("y decl: %+v", yDecl)
	}
}

func TestParseHierarchy(t *testing.T) {
	src := `
module half_adder(input a, input b, output s, output c);
  assign s = a ^ b;
  assign c = a & b;
endmodule

module full_adder(input a, input b, input cin, output s, output cout);
  wire s1, c1, c2;
  half_adder ha1 (.a(a), .b(b), .s(s1), .c(c1));
  half_adder ha2 (.a(s1), .b(cin), .s(s), .c(c2));
  assign cout = c1 | c2;
endmodule
`
	parsed, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Modules) != 2 {
		t.Fatalf("modules: %d", len(parsed.Modules))
	}
	top := parsed.Top()
	if top.Name != "full_adder" {
		t.Errorf("top = %s, want full_adder", top.Name)
	}
	if len(top.Instances) != 2 {
		t.Fatalf("instances: %d", len(top.Instances))
	}
	inst := top.Instances[0]
	if inst.ModuleName != "half_adder" || inst.Name != "ha1" || len(inst.Conns) != 4 {
		t.Errorf("instance: %+v", inst)
	}
}

func TestParseParameters(t *testing.T) {
	src := `
module shifter #(parameter WIDTH = 8, parameter AMT = 2) (
  input [WIDTH-1:0] din,
  output [WIDTH-1:0] dout
);
  localparam HALF = WIDTH / 2;
  assign dout = din << AMT;
endmodule
`
	parsed, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := parsed.Modules[0]
	if len(m.Params) != 3 {
		t.Fatalf("params: %d", len(m.Params))
	}
	if m.Params[0].Name != "WIDTH" || m.Params[2].Name != "HALF" || !m.Params[2].Local {
		t.Errorf("params: %+v %+v %+v", m.Params[0], m.Params[1], m.Params[2])
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	src := `module m(input [3:0] a, input [3:0] b, output [3:0] y);
  assign y = a + b & a ^ b | a;
endmodule`
	parsed, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// | binds loosest: ((a+b & a) ^ b) | a
	e := parsed.Modules[0].Assigns[0].RHS
	or, ok := e.(*Binary)
	if !ok || or.Op != "|" {
		t.Fatalf("root: %v", e)
	}
	xor, ok := or.L.(*Binary)
	if !ok || xor.Op != "^" {
		t.Fatalf("left of |: %v", or.L)
	}
	and, ok := xor.L.(*Binary)
	if !ok || and.Op != "&" {
		t.Fatalf("left of ^: %v", xor.L)
	}
	add, ok := and.L.(*Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("left of &: %v", and.L)
	}
}

func TestParseTernaryAndSelects(t *testing.T) {
	src := `module m(input [7:0] a, input s, output [3:0] y, output b);
  assign y = s ? a[7:4] : a[3:0];
  assign b = a[2];
endmodule`
	parsed, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tern, ok := parsed.Modules[0].Assigns[0].RHS.(*Ternary)
	if !ok {
		t.Fatalf("not ternary: %v", parsed.Modules[0].Assigns[0].RHS)
	}
	if _, ok := tern.T.(*Range); !ok {
		t.Errorf("T arm not range: %v", tern.T)
	}
	if _, ok := parsed.Modules[0].Assigns[1].RHS.(*Index); !ok {
		t.Errorf("not index: %v", parsed.Modules[0].Assigns[1].RHS)
	}
}

func TestParseConcatRepl(t *testing.T) {
	src := `module m(input [3:0] a, output [7:0] y, output [7:0] z);
  assign y = {a, 4'b0000};
  assign z = {2{a}};
endmodule`
	parsed, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := parsed.Modules[0].Assigns[0].RHS.(*Concat); !ok {
		t.Error("expected concat")
	}
	if _, ok := parsed.Modules[0].Assigns[1].RHS.(*Repl); !ok {
		t.Error("expected replication")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"module",
		"module m; input; endmodule",
		"module m(input a; endmodule",
		"module m; assign = 1; endmodule",
		"module m; always @(posedge) begin end endmodule",
		"module m; reg [7:0] mem [0:3]; endmodule",
		"module m; wire w; assign w = (1; endmodule",
		"module m; case endmodule",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	// Every expression we can parse should re-parse from its String() form
	// to an identical string (printer fixed point).
	exprs := []string{
		"a + b", "a & (b | c)", "~a", "!a", "&a", "a ? b : c",
		"{a, b, c}", "{3{a}}", "a[3]", "a[7:4]", "a == b", "a << 2",
		"-a", "a ~^ b", "a % b",
	}
	for _, es := range exprs {
		src := "module m; assign x = " + es + "; endmodule"
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", es, err)
		}
		s1 := p1.Modules[0].Assigns[0].RHS.String()
		p2, err := Parse("module m; assign x = " + s1 + "; endmodule")
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", s1, es, err)
		}
		s2 := p2.Modules[0].Assigns[0].RHS.String()
		if s1 != s2 {
			t.Errorf("round trip: %q -> %q -> %q", es, s1, s2)
		}
	}
}

func TestQuickNumbersRoundTrip(t *testing.T) {
	// Property: any (width, value) pair we format as Verilog parses back to
	// the same value truncated to the width.
	f := func(width uint8, value uint64) bool {
		w := int(width%63) + 1
		masked := value & ((1 << uint(w)) - 1)
		n, err := ParseNumber((&Number{Width: w, Value: masked, Sized: true}).String())
		if err != nil {
			return false
		}
		return n.Width == w && n.Value == masked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
