package annotate

import (
	"strings"
	"testing"

	"rtltimer/internal/core"
)

const src = `module m(
  input clk,
  input [3:0] a,
  output [3:0] o
);
  reg [3:0] r1;
  reg [3:0] r2, deep;
  always @(posedge clk) begin
    r1 <= a;
    r2 <= r1 + a;
    deep <= r2 * r1;
  end
  assign o = deep;
endmodule`

func fakePrediction() *core.DesignPrediction {
	return &core.DesignPrediction{
		Period: 0.5,
		WNS:    -0.12,
		TNS:    -3.4,
		Signals: []core.SignalPrediction{
			{Name: "r1", AT: 0.2, Slack: 0.27, RankScore: 0.1, Group: 3},
			{Name: "r2", AT: 0.4, Slack: 0.07, RankScore: 0.5, Group: 1},
			{Name: "deep", AT: 0.6, Slack: -0.13, RankScore: 0.9, Group: 0},
			{Name: "u0.inner", AT: 0.55, Slack: -0.09, RankScore: 0.8, Group: 0},
		},
	}
}

func TestAnnotateHeader(t *testing.T) {
	out, err := Annotate(src, fakePrediction(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "// Tech: NanGate45nm-sim") {
		t.Error("missing tech header")
	}
	if !strings.Contains(out, "WNS: -0.12ns, TNS: -3.40ns") {
		t.Errorf("missing WNS/TNS header:\n%s", out)
	}
}

func TestAnnotateSignalLines(t *testing.T) {
	out, err := Annotate(src, fakePrediction(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	var r1Line, r2Line string
	for _, l := range lines {
		if strings.Contains(l, "reg [3:0] r1;") {
			r1Line = l
		}
		if strings.Contains(l, "reg [3:0] r2, deep;") {
			r2Line = l
		}
	}
	if !strings.Contains(r1Line, "(r1) Slack@0.27ns rank@g4") {
		t.Errorf("r1 annotation: %q", r1Line)
	}
	// Shared declaration line carries both signals.
	if !strings.Contains(r2Line, "(deep) Slack@-0.13ns rank@g1") ||
		!strings.Contains(r2Line, "(r2) Slack@0.07ns rank@g2") {
		t.Errorf("r2/deep annotation: %q", r2Line)
	}
}

func TestAnnotateHierarchicalSummary(t *testing.T) {
	out, err := Annotate(src, fakePrediction(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "u0.inner") {
		t.Error("hierarchical signal missing from summary")
	}
}

func TestAnnotatedSourceStillParses(t *testing.T) {
	out, err := Annotate(src, fakePrediction(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The annotated file must remain valid Verilog (comments only).
	if _, err := Annotate(out, fakePrediction(), Options{}); err != nil {
		t.Fatalf("annotated output no longer parses: %v", err)
	}
}

func TestAnnotateBadSource(t *testing.T) {
	if _, err := Annotate("not verilog", fakePrediction(), Options{}); err == nil {
		t.Error("expected parse error")
	}
}
