// Package annotate implements RTL-Timer's automatic slack annotation on
// HDL source (paper §3.5.1, Fig. 3 step 3): the original Verilog text is
// returned with a header comment recording the technology node and the
// predicted design WNS/TNS, and with every sequential signal declaration
// annotated with its predicted slack and criticality ranking group, e.g.
//
//	reg [7:0] R1;  // (R1) Slack@-0.60ns rank@g1
//
// Signals that live inside flattened sub-instances (hierarchical names
// containing '.') cannot be attached to a top-module source line and are
// reported in a trailing summary comment block instead.
package annotate

import (
	"fmt"
	"sort"
	"strings"

	"rtltimer/internal/core"
	"rtltimer/internal/verilog"
)

// Options controls annotation output.
type Options struct {
	TechName string // defaults to "NanGate45nm-sim"
	// MaxSummary bounds the trailing summary block for hierarchical
	// signals (0 = 16).
	MaxSummary int
}

// Annotate returns the annotated Verilog text.
func Annotate(src string, pred *core.DesignPrediction, opts Options) (string, error) {
	if opts.TechName == "" {
		opts.TechName = "NanGate45nm-sim"
	}
	if opts.MaxSummary == 0 {
		opts.MaxSummary = 16
	}
	parsed, err := verilog.Parse(src)
	if err != nil {
		return "", fmt.Errorf("annotate: %w", err)
	}
	top := parsed.Top()
	if top == nil {
		return "", fmt.Errorf("annotate: no top module")
	}

	// Map declaration line -> signals declared there (top level only).
	byLine := map[int][]string{}
	for _, d := range top.Decls {
		for _, name := range d.Names {
			if _, ok := pred.SignalByName(name); ok {
				byLine[d.Line] = append(byLine[d.Line], name)
			}
		}
	}

	var hier []core.SignalPrediction
	local := map[string]bool{}
	for _, names := range byLine {
		for _, n := range names {
			local[n] = true
		}
	}
	for _, s := range pred.Signals {
		if !local[s.Name] {
			hier = append(hier, s)
		}
	}
	sort.Slice(hier, func(i, j int) bool { return hier[i].Slack < hier[j].Slack })

	lines := strings.Split(src, "\n")
	var out strings.Builder
	fmt.Fprintf(&out, "// Tech: %s\n", opts.TechName)
	fmt.Fprintf(&out, "// WNS: %.2fns, TNS: %.2fns  (RTL-Timer prediction @ %.2fns clock)\n",
		pred.WNS, pred.TNS, pred.Period)
	for ln, line := range lines {
		out.WriteString(line)
		if names, ok := byLine[ln+1]; ok {
			sort.Strings(names)
			var parts []string
			for _, name := range names {
				s, _ := pred.SignalByName(name)
				parts = append(parts, fmt.Sprintf("(%s) Slack@%.2fns rank@g%d", name, s.Slack, s.Group+1))
			}
			out.WriteString("  // " + strings.Join(parts, " "))
		}
		if ln < len(lines)-1 {
			out.WriteByte('\n')
		}
	}
	if len(hier) > 0 {
		out.WriteString("\n// RTL-Timer: flattened sub-instance signals (worst first):\n")
		n := len(hier)
		if n > opts.MaxSummary {
			n = opts.MaxSummary
		}
		for _, s := range hier[:n] {
			fmt.Fprintf(&out, "//   %-32s Slack@%.2fns rank@g%d\n", s.Name, s.Slack, s.Group+1)
		}
		if len(hier) > n {
			fmt.Fprintf(&out, "//   ... %d more\n", len(hier)-n)
		}
	}
	return out.String(), nil
}
